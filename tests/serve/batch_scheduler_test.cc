// BatchScheduler contract tests: submitted demand is always served with
// logits bit-identical to synchronous engine queries — across many threads,
// many views, overlay flip sets, and randomized size/deadline triggers —
// and the claim-based flush path cannot deadlock under a saturated
// ParallelFor.
#include "src/serve/batch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/timer.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

// Reference values come from a second, independent engine over the same
// model/graph: both sides are bit-identical to direct model inference by
// the engine contract, so equality here proves the scheduler changed
// nothing.
struct Rig {
  explicit Rig(const testing::TrainedFixture& f)
      : engine(f.model.get(), f.graph.get()),
        reference(f.model.get(), f.graph.get()),
        sub_view(f.graph->num_nodes(), {Edge(0, 1), Edge(1, 2), Edge(2, 3)}),
        overlay_view(&engine.full_view(), {Edge(0, 2), Edge(1, 3)}),
        ref_overlay_view(&reference.full_view(), {Edge(0, 2), Edge(1, 3)}) {
    sub_id = engine.Register(&sub_view);
    overlay_id = engine.Register(&overlay_view);
    ref_sub_id = reference.Register(&sub_view);
    ref_overlay_id = reference.Register(&ref_overlay_view);
  }

  InferenceEngine engine;
  InferenceEngine reference;
  EdgeSubsetView sub_view;
  OverlayView overlay_view;
  OverlayView ref_overlay_view;
  InferenceEngine::ViewId sub_id = -1;
  InferenceEngine::ViewId overlay_id = -1;
  InferenceEngine::ViewId ref_sub_id = -1;
  InferenceEngine::ViewId ref_overlay_id = -1;
};

TEST(BatchScheduler, SingleSubmitMatchesSynchronousLogits) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.deadline_us = 1000;
  BatchScheduler scheduler(&rig.engine, opts);
  auto ticket = scheduler.Submit(InferenceEngine::kFullView, {1, 2, 3});
  ticket.Wait();
  for (NodeId v : {1, 2, 3}) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, v),
              rig.reference.Logits(InferenceEngine::kFullView, v));
  }
  // The demand was served by one flush, not three queries.
  EXPECT_EQ(rig.engine.stats().model_invocations, 1);
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.submitted, 1);
  EXPECT_EQ(s.flushes, 1);
  EXPECT_EQ(s.flushed_nodes, 3);
}

TEST(BatchScheduler, EmptyAndDefaultTicketsAreComplete) {
  const auto& f = testing::TwoCommunityGcn();
  InferenceEngine engine(f.model.get(), f.graph.get());
  BatchScheduler scheduler(&engine);
  BatchScheduler::Ticket empty;
  EXPECT_FALSE(empty.valid());
  empty.Wait();  // no-op
  auto t = scheduler.Submit(InferenceEngine::kFullView, {});
  EXPECT_FALSE(t.valid());
  t.Wait();  // no-op
  EXPECT_EQ(scheduler.stats().submitted, 0);
}

TEST(BatchScheduler, SizeTriggerFlushesWithoutWaitingForDeadline) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 4;
  opts.deadline_us = 60'000'000;  // a minute: the deadline must not matter
  BatchScheduler scheduler(&rig.engine, opts);
  scheduler.Submit(InferenceEngine::kFullView, {1, 2, 3, 4}).Wait();
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.size_flushes, 1);
  EXPECT_EQ(s.deadline_flushes, 0);
  EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, 4),
            rig.reference.Logits(InferenceEngine::kFullView, 4));
}

TEST(BatchScheduler, DeadlineTriggerFlushesSmallBatches) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 1 << 20;
  opts.deadline_us = 500;
  BatchScheduler scheduler(&rig.engine, opts);
  scheduler.Submit(InferenceEngine::kFullView, {5}).Wait();
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.deadline_flushes, 1);
  EXPECT_EQ(s.size_flushes, 0);
  EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, 5),
            rig.reference.Logits(InferenceEngine::kFullView, 5));
}

TEST(BatchScheduler, DestructorDrainsUnwaitedTickets) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  {
    BatchSchedulerOptions opts;
    opts.deadline_us = 60'000'000;
    BatchScheduler scheduler(&rig.engine, opts);
    scheduler.Submit(InferenceEngine::kFullView, {1, 2});  // never waited
    scheduler.Submit(rig.sub_id, {3});
  }
  // The destructor flushed the pending demand; the cache must be warm.
  const EngineStats before = rig.engine.stats();
  rig.engine.Logits(InferenceEngine::kFullView, 1);
  rig.engine.Logits(rig.sub_id, 3);
  EXPECT_EQ((rig.engine.stats() - before).cache_hits, 2);
}

TEST(BatchScheduler, CoalescesConcurrentRequestsIntoFewerFlushes) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 1 << 20;
  opts.deadline_us = 300'000;  // wide window: all submits land in one wave
  BatchScheduler scheduler(&rig.engine, opts);
  constexpr int kThreads = 6;
  std::latch start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      scheduler.Submit(InferenceEngine::kFullView, {NodeId(t)}).Wait();
    });
  }
  for (auto& t : threads) t.join();
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.submitted, kThreads);
  // All six requesters released together against a 300ms window; even on a
  // heavily oversubscribed CI core the demand must coalesce below one flush
  // per request, and at least one flush must have served several requests.
  EXPECT_LT(s.flushes, kThreads);
  EXPECT_GE(s.coalesced_flushes, 1);
  EXPECT_LT(rig.engine.stats().model_invocations, kThreads);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, NodeId(t)),
              rig.reference.Logits(InferenceEngine::kFullView, NodeId(t)));
  }
}

TEST(BatchScheduler, OverlayDemandCoalescesByCanonicalFlipSet) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.deadline_us = 200'000;
  BatchScheduler scheduler(&rig.engine, opts);
  // The same disturbance written two ways (order + duplicate): one batch.
  const std::vector<Edge> flips_a = {Edge(0, 2), Edge(1, 3)};
  const std::vector<Edge> flips_b = {Edge(1, 3), Edge(0, 2), Edge(1, 3)};
  auto t1 = scheduler.SubmitOverlay(flips_a, {1});
  auto t2 = scheduler.SubmitOverlay(flips_b, {2, 3});
  t1.Wait();
  t2.Wait();
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.flushes, 1);
  EXPECT_EQ(s.coalesced_flushes, 1);
  EXPECT_EQ(s.flushed_nodes, 3);
  for (NodeId v : {1, 2, 3}) {
    EXPECT_EQ(rig.engine.LogitsOverlay(flips_a, v),
              rig.reference.LogitsOverlay(flips_a, v));
  }
}

TEST(BatchScheduler, WarmAllPipelinesMultipleViews) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 1;  // dispatch each complete request immediately
  opts.deadline_us = 0;
  BatchScheduler scheduler(&rig.engine, opts);
  const std::vector<NodeId> nodes = {1, 2, 3};
  scheduler.WarmAll({{InferenceEngine::kFullView, nodes},
                     {rig.sub_id, nodes},
                     {rig.overlay_id, nodes}});
  EXPECT_EQ(scheduler.stats().flushes, 3);
  for (NodeId v : nodes) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, v),
              rig.reference.Logits(InferenceEngine::kFullView, v));
    EXPECT_EQ(rig.engine.Logits(rig.sub_id, v),
              rig.reference.Logits(rig.ref_sub_id, v));
    EXPECT_EQ(rig.engine.Logits(rig.overlay_id, v),
              rig.reference.Logits(rig.ref_overlay_id, v));
  }
}

// The stress test of the concurrency contract: many threads x many views x
// overlay flip sets, against schedulers with randomized deadlines and size
// triggers. Every returned logit vector must be bit-identical to the
// reference engine's synchronous answer.
TEST(BatchScheduler, StressManyThreadsManyViewsBitIdenticalLogits) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  const std::vector<Edge> flip_pool[] = {
      {Edge(0, 2)}, {Edge(1, 3), Edge(4, 5)}, {Edge(2, 8)}};
  struct Config {
    int64_t deadline_us;
    int max_batch_nodes;
  };
  const Config configs[] = {{0, 1}, {300, 4}, {2000, 7}, {50'000, 1 << 20}};
  const NodeId n = rig.engine.graph().num_nodes();
  for (const Config& config : configs) {
    BatchSchedulerOptions opts;
    opts.deadline_us = config.deadline_us;
    opts.max_batch_nodes = config.max_batch_nodes;
    BatchScheduler scheduler(&rig.engine, opts);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 12;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(1000 * config.deadline_us + t + 1));
        for (int op = 0; op < kOpsPerThread; ++op) {
          std::vector<NodeId> nodes;
          const int count = 1 + static_cast<int>(rng.UniformInt(3));
          for (int i = 0; i < count; ++i) {
            nodes.push_back(
                static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(n))));
          }
          const int kind = static_cast<int>(rng.UniformInt(4));
          if (kind == 3) {
            const auto& flips = flip_pool[rng.UniformInt(3)];
            scheduler.SubmitOverlay(flips, nodes).Wait();
            for (NodeId v : nodes) {
              if (rig.engine.LogitsOverlay(flips, v) !=
                  rig.reference.LogitsOverlay(flips, v)) {
                mismatches.fetch_add(1);
              }
            }
          } else {
            const InferenceEngine::ViewId ids[] = {InferenceEngine::kFullView,
                                                   rig.sub_id, rig.overlay_id};
            const InferenceEngine::ViewId ref_ids[] = {
                InferenceEngine::kFullView, rig.ref_sub_id,
                rig.ref_overlay_id};
            scheduler.Submit(ids[kind], nodes).Wait();
            for (NodeId v : nodes) {
              if (rig.engine.Logits(ids[kind], v) !=
                  rig.reference.Logits(ref_ids[kind], v)) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0)
        << "deadline_us=" << config.deadline_us
        << " max_batch_nodes=" << config.max_batch_nodes;
    const SchedulerStats s = scheduler.stats();
    EXPECT_EQ(s.submitted, kThreads * kOpsPerThread);
  }
}

// Regression for the deadlock the claim-based flush design exists to
// prevent: every pool worker blocks inside Ticket::Wait() while the flushes
// they are waiting for sit behind them in the pool queue. The timer thread
// detaches the batches at their deadline and the waiters run the flushes
// themselves.
TEST(BatchScheduler, NestedParallelForUnderFlushDoesNotDeadlock) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 1 << 20;  // only the deadline can detach
  opts.deadline_us = 5000;
  BatchScheduler scheduler(&rig.engine, opts);
  const int64_t iterations = 4 * (DefaultPool()->num_threads() + 1);
  std::atomic<int> mismatches{0};
  ParallelFor(DefaultPool(), iterations, [&](int64_t i) {
    const NodeId v =
        static_cast<NodeId>(i % rig.engine.graph().num_nodes());
    scheduler.Submit(InferenceEngine::kFullView, {v}).Wait();
    if (rig.engine.Logits(InferenceEngine::kFullView, v) !=
        rig.reference.Logits(InferenceEngine::kFullView, v)) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(scheduler.stats().submitted, iterations);
}

// Every flush records one wait (submit -> flush-start) and one ticket
// (submit -> complete) latency sample per joined request.
TEST(BatchScheduler, RecordsTicketLatencyPerRequest) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.deadline_us = 500;
  BatchScheduler scheduler(&rig.engine, opts);
  scheduler.Submit(InferenceEngine::kFullView, {1, 2}).Wait();
  scheduler.Submit(rig.sub_id, {3}).Wait();
  EXPECT_EQ(scheduler.wait_latency().count(), 2);
  EXPECT_EQ(scheduler.ticket_latency().count(), 2);
  const LatencySummary s = scheduler.ticket_latency().Summarize();
  // A deadline flush cannot complete before the deadline elapses.
  EXPECT_GE(s.min_us, 500.0);
  // Complete >= flush-start for every request.
  EXPECT_GE(s.mean_us, scheduler.wait_latency().Summarize().mean_us);
}

// Adaptive mode: a lone caller is served synchronously by the idle
// fast-path instead of parking on the timer for the (here absurdly long)
// deadline — and the logits stay bit-identical to the reference engine.
TEST(BatchScheduler, AdaptiveFastPathServesLoneCallerImmediately) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.adaptive = true;
  opts.max_batch_nodes = 1 << 20;
  opts.deadline_us = 60'000'000;  // a fixed deadline would park for a minute
  BatchScheduler scheduler(&rig.engine, opts);
  Timer t;
  scheduler.Submit(InferenceEngine::kFullView, {1, 2, 7}).Wait();
  EXPECT_LT(t.Seconds(), 10.0);  // generous CI slack, far below the minute
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.fastpath_flushes, 1);
  EXPECT_EQ(s.flushes, 1);
  EXPECT_EQ(s.flushed_nodes, 3);
  EXPECT_EQ(scheduler.ticket_latency().count(), 1);
  for (NodeId v : {1, 2, 7}) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, v),
              rig.reference.Logits(InferenceEngine::kFullView, v));
  }
}

TEST(BatchScheduler, AdaptiveFastPathServesOverlayDemand) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.adaptive = true;
  opts.deadline_us = 60'000'000;
  BatchScheduler scheduler(&rig.engine, opts);
  const std::vector<Edge> flips = {Edge(0, 2), Edge(1, 3)};
  Timer t;
  scheduler.SubmitOverlay(flips, {1, 2, 2}).Wait();  // dup node: dedup to 2
  EXPECT_LT(t.Seconds(), 10.0);
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.fastpath_flushes, 1);
  EXPECT_EQ(s.flushed_nodes, 2);
  for (NodeId v : {1, 2}) {
    EXPECT_EQ(rig.engine.LogitsOverlay(flips, v),
              rig.reference.LogitsOverlay(flips, v));
  }
}

// Adaptive deadlines flush on quiescence (patience after the latest join),
// never waiting out a distant hard deadline.
TEST(BatchScheduler, AdaptiveQuiescenceFlushesBeforeHardDeadline) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.adaptive = true;
  opts.max_batch_nodes = 1 << 20;
  opts.deadline_us = 60'000'000;
  opts.adaptive_patience_us = 2000;
  opts.fastpath_idle_us = 60'000'000;  // first submit fast-paths regardless
  BatchScheduler scheduler(&rig.engine, opts);
  scheduler.Submit(InferenceEngine::kFullView, {0}).Wait();  // fast path
  // Back-to-back submits: gap far below fastpath_idle_us, so they form a
  // pending batch that must flush ~patience after the last join.
  Timer t;
  auto t1 = scheduler.Submit(InferenceEngine::kFullView, {1, 2});
  auto t2 = scheduler.Submit(InferenceEngine::kFullView, {3});
  t1.Wait();
  t2.Wait();
  EXPECT_LT(t.Seconds(), 10.0);  // generous slack, far below the minute
  const SchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.fastpath_flushes, 1);
  EXPECT_EQ(s.deadline_flushes, 1);
  EXPECT_GE(s.coalesced_flushes, 1);
  for (NodeId v : {0, 1, 2, 3}) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, v),
              rig.reference.Logits(InferenceEngine::kFullView, v));
  }
}

// Flash-crowd load step: a burst of concurrent traffic collapses the EWMA
// interarrival estimate (load-proportional size threshold), and once the
// crowd passes, a single 1-second gap folded into the EWMA (alpha 0.2 =>
// >= 200ms) must shrink the expected per-patience demand below one request,
// so the next small submit size-flushes immediately instead of being held
// open for stragglers that will never arrive. The trigger-partition
// invariant (flushes == size + deadline + drain + fastpath) must hold
// across every phase of the transition.
TEST(BatchScheduler, AdaptiveSizeThresholdRecoversAfterFlashCrowd) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  const NodeId num_nodes = f.graph->num_nodes();
  BatchSchedulerOptions opts;
  opts.adaptive = true;
  opts.max_batch_nodes = 8;        // < graph size: crowd can size-flush
  opts.deadline_us = 60'000'000;   // recovery must not lean on the deadline
  opts.adaptive_patience_us = 20'000;
  opts.fastpath_idle_us = 60'000'000;  // only the very first submit is idle
  BatchScheduler scheduler(&rig.engine, opts);
  auto partition_holds = [](const SchedulerStats& s) {
    return s.flushes == s.size_flushes + s.deadline_flushes +
                            s.drain_flushes + s.fastpath_flushes;
  };

  // Phase A — quiet start: the lone submit takes the idle fast path.
  scheduler.Submit(InferenceEngine::kFullView, {0}).Wait();
  const SchedulerStats quiet = scheduler.stats();
  EXPECT_EQ(quiet.fastpath_flushes, 1);
  EXPECT_TRUE(partition_holds(quiet));

  // Phase B — flash crowd: 8 threads firing back-to-back 2-node requests.
  // Tiny interarrival gaps dominate the EWMA, so the size threshold grows
  // toward max_batch_nodes and the crowd coalesces into size flushes.
  std::vector<std::thread> crowd;
  for (int t = 0; t < 8; ++t) {
    crowd.emplace_back([&, t] {
      // Stride 7 is coprime with the 12-node graph: each wave of eight
      // concurrent 2-node requests spans >= 8 distinct nodes, so a shared
      // pending batch crosses the size threshold instead of stalling on
      // overlapping demand.
      for (int i = 0; i < 6; ++i) {
        const NodeId a = static_cast<NodeId>((t * 7 + i * 3) % num_nodes);
        const NodeId b = static_cast<NodeId>((a + 5) % num_nodes);
        scheduler.Submit(InferenceEngine::kFullView, {a, b}).Wait();
      }
    });
  }
  for (auto& th : crowd) th.join();
  const SchedulerStats after_crowd = scheduler.stats();
  EXPECT_EQ(after_crowd.submitted, quiet.submitted + 48);
  EXPECT_EQ(after_crowd.fastpath_flushes, 1)
      << "anti-cascade: crowd traffic must coalesce, never fast-path";
  EXPECT_GE(after_crowd.size_flushes, 1);
  EXPECT_TRUE(partition_holds(after_crowd));

  // Phase C — recovery: after a 1s lull the folded-in gap pushes the EWMA
  // interarrival above patience, the expected demand per window drops
  // below one request, and the threshold clamps to 1 node. A small submit
  // must therefore size-flush on join — no patience wait, no deadline.
  std::this_thread::sleep_for(std::chrono::seconds(1));
  Timer t;
  scheduler.Submit(InferenceEngine::kFullView, {3, 9}).Wait();
  EXPECT_LT(t.Seconds(), 10.0);  // generous CI slack, far below the minute
  const SchedulerStats recovered = scheduler.stats();
  EXPECT_GE(recovered.size_flushes, after_crowd.size_flushes + 1)
      << "post-crowd submit must trip the recovered (collapsed) threshold";
  EXPECT_EQ(recovered.deadline_flushes, after_crowd.deadline_flushes);
  EXPECT_EQ(recovered.fastpath_flushes, 1);
  EXPECT_TRUE(partition_holds(recovered));

  // Bit-identity across all three phases.
  for (NodeId v = 0; v < num_nodes; ++v) {
    EXPECT_EQ(rig.engine.Logits(InferenceEngine::kFullView, v),
              rig.reference.Logits(InferenceEngine::kFullView, v));
  }
}

// The adaptive regression demanded by the bit-identical-logits contract:
// randomized multi-thread traffic through adaptive schedulers (fast paths,
// quiescence deadlines, load-proportional size triggers all firing) must
// produce logits equal to the untouched reference engine's sync answers.
TEST(BatchScheduler, AdaptiveStressBitIdenticalLogitsVsSyncMode) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  const std::vector<Edge> flip_pool[] = {
      {Edge(0, 2)}, {Edge(1, 3), Edge(4, 5)}, {Edge(2, 8)}};
  struct Config {
    int64_t deadline_us;
    int64_t patience_us;
    int64_t fastpath_idle_us;
    int max_batch_nodes;
  };
  const Config configs[] = {{2000, -1, -1, 4},
                            {50'000, 500, 100, 1 << 20},
                            {300, 100, 60'000'000, 2}};
  const NodeId n = rig.engine.graph().num_nodes();
  for (const Config& config : configs) {
    BatchSchedulerOptions opts;
    opts.adaptive = true;
    opts.deadline_us = config.deadline_us;
    opts.adaptive_patience_us = config.patience_us;
    opts.fastpath_idle_us = config.fastpath_idle_us;
    opts.max_batch_nodes = config.max_batch_nodes;
    BatchScheduler scheduler(&rig.engine, opts);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 12;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(1000 * config.deadline_us + t + 1));
        for (int op = 0; op < kOpsPerThread; ++op) {
          std::vector<NodeId> nodes;
          const int count = 1 + static_cast<int>(rng.UniformInt(3));
          for (int i = 0; i < count; ++i) {
            nodes.push_back(
                static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(n))));
          }
          const int kind = static_cast<int>(rng.UniformInt(4));
          if (kind == 3) {
            const auto& flips = flip_pool[rng.UniformInt(3)];
            scheduler.SubmitOverlay(flips, nodes).Wait();
            for (NodeId v : nodes) {
              if (rig.engine.LogitsOverlay(flips, v) !=
                  rig.reference.LogitsOverlay(flips, v)) {
                mismatches.fetch_add(1);
              }
            }
          } else {
            const InferenceEngine::ViewId ids[] = {InferenceEngine::kFullView,
                                                   rig.sub_id, rig.overlay_id};
            const InferenceEngine::ViewId ref_ids[] = {
                InferenceEngine::kFullView, rig.ref_sub_id,
                rig.ref_overlay_id};
            scheduler.Submit(ids[kind], nodes).Wait();
            for (NodeId v : nodes) {
              if (rig.engine.Logits(ids[kind], v) !=
                  rig.reference.Logits(ref_ids[kind], v)) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0)
        << "adaptive deadline_us=" << config.deadline_us
        << " patience_us=" << config.patience_us
        << " fastpath_idle_us=" << config.fastpath_idle_us
        << " max_batch_nodes=" << config.max_batch_nodes;
    const SchedulerStats s = scheduler.stats();
    EXPECT_EQ(s.submitted, kThreads * kOpsPerThread);
    // Trigger accounting stays a partition of all flushes.
    EXPECT_EQ(s.flushes, s.size_flushes + s.deadline_flushes +
                             s.drain_flushes + s.fastpath_flushes);
    // One latency sample pair per request, whatever path served it.
    EXPECT_EQ(scheduler.ticket_latency().count(), s.submitted);
    EXPECT_EQ(scheduler.wait_latency().count(), s.submitted);
  }
}

// Size-triggered flushes submitted from inside a pool worker run inline
// (ThreadPool::InWorkerThread()), so a saturated queue cannot stall them.
TEST(BatchScheduler, SizeTriggeredFlushFromPoolWorkerRunsInline) {
  const auto& f = testing::TwoCommunityGcn();
  Rig rig(f);
  BatchSchedulerOptions opts;
  opts.max_batch_nodes = 2;
  opts.deadline_us = 60'000'000;
  BatchScheduler scheduler(&rig.engine, opts);
  std::atomic<int> mismatches{0};
  ParallelFor(DefaultPool(), 2 * (DefaultPool()->num_threads() + 1),
              [&](int64_t i) {
                const NodeId a = static_cast<NodeId>(2 * i % 10);
                const NodeId b = static_cast<NodeId>((2 * i + 1) % 10);
                scheduler.Submit(InferenceEngine::kFullView, {a, b}).Wait();
                if (rig.engine.Logits(InferenceEngine::kFullView, a) !=
                    rig.reference.Logits(InferenceEngine::kFullView, a)) {
                  mismatches.fetch_add(1);
                }
              });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(scheduler.stats().size_flushes, 1);
}

}  // namespace
}  // namespace robogexp
