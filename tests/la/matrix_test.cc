#include "src/la/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robogexp {
namespace {

Matrix Fill(std::initializer_list<std::initializer_list<double>> rows) {
  Matrix m(static_cast<int64_t>(rows.size()),
           static_cast<int64_t>(rows.begin()->size()));
  int64_t r = 0;
  for (const auto& row : rows) {
    int64_t c = 0;
    for (double v : row) m.at(r, c++) = v;
    ++r;
  }
  return m;
}

TEST(Matrix, MultiplySmallKnown) {
  const Matrix a = Fill({{1, 2}, {3, 4}});
  const Matrix b = Fill({{5, 6}, {7, 8}});
  const Matrix c = Matrix::Multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposeMultiplyAgreesWithExplicitTranspose) {
  Rng rng(3);
  const Matrix a = Matrix::Xavier(7, 5, &rng);
  const Matrix b = Matrix::Xavier(7, 4, &rng);
  const Matrix c1 = Matrix::TransposeMultiply(a, b);
  const Matrix c2 = Matrix::Multiply(a.Transposed(), b);
  ASSERT_EQ(c1.rows(), c2.rows());
  for (int64_t i = 0; i < c1.rows(); ++i) {
    for (int64_t j = 0; j < c1.cols(); ++j) {
      EXPECT_NEAR(c1.at(i, j), c2.at(i, j), 1e-12);
    }
  }
}

TEST(Matrix, MultiplyTransposedAgrees) {
  Rng rng(5);
  const Matrix a = Matrix::Xavier(6, 8, &rng);
  const Matrix b = Matrix::Xavier(3, 8, &rng);
  const Matrix c1 = Matrix::MultiplyTransposed(a, b);
  const Matrix c2 = Matrix::Multiply(a, b.Transposed());
  for (int64_t i = 0; i < c1.rows(); ++i) {
    for (int64_t j = 0; j < c1.cols(); ++j) {
      EXPECT_NEAR(c1.at(i, j), c2.at(i, j), 1e-12);
    }
  }
}

TEST(Matrix, LargeParallelMultiplyMatchesSerialReference) {
  Rng rng(7);
  const Matrix a = Matrix::Xavier(120, 60, &rng);
  const Matrix b = Matrix::Xavier(60, 40, &rng);
  const Matrix c = Matrix::Multiply(a, b);
  // Serial reference on a few sampled entries.
  for (int64_t i = 0; i < 120; i += 17) {
    for (int64_t j = 0; j < 40; j += 7) {
      double s = 0;
      for (int64_t p = 0; p < 60; ++p) s += a.at(i, p) * b.at(p, j);
      EXPECT_NEAR(c.at(i, j), s, 1e-10);
    }
  }
}

TEST(Matrix, ReluMasksNegatives) {
  Matrix m = Fill({{-1, 2}, {3, -4}});
  Matrix mask;
  m.ReluInPlace(&mask);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(mask.at(0, 0), 0);
  EXPECT_DOUBLE_EQ(mask.at(1, 0), 1);
}

TEST(Matrix, SoftmaxRowsSumToOne) {
  Matrix m = Fill({{1, 2, 3}, {1000, 1001, 999}});  // tests stabilization
  m.SoftmaxRowsInPlace();
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 3; ++c) {
      ASSERT_TRUE(std::isfinite(m.at(r, c)));
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(m.at(0, 2), m.at(0, 0));
}

TEST(Matrix, ArgmaxRowPicksFirstOnStrictMax) {
  const Matrix m = Fill({{0.1, 0.9, 0.5}});
  EXPECT_EQ(m.ArgmaxRow(0), 1);
}

TEST(Matrix, AddRowVector) {
  Matrix m = Fill({{1, 1}, {2, 2}});
  const Matrix bias = Fill({{10, 20}});
  m.AddRowVectorInPlace(bias);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 22);
}

TEST(Matrix, XavierBoundsAndDeterminism) {
  Rng r1(11), r2(11);
  const Matrix a = Matrix::Xavier(20, 30, &r1);
  const Matrix b = Matrix::Xavier(20, 30, &r2);
  const double bound = std::sqrt(6.0 / 50.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a.at(i, j), b.at(i, j));
      EXPECT_LE(std::fabs(a.at(i, j)), bound);
    }
  }
}

TEST(Matrix, SoftmaxCrossEntropyGradientIsSoftmaxMinusOnehot) {
  Matrix logits = Fill({{2.0, 1.0, 0.0}, {0.0, 0.0, 0.0}});
  Matrix probs = logits;
  probs.SoftmaxRowsInPlace();
  Matrix grad;
  const double loss = SoftmaxCrossEntropy(probs, {{0, 0}, {1, 2}}, &grad);
  EXPECT_GT(loss, 0.0);
  // Row 0, class 0: (p - 1)/2.
  EXPECT_NEAR(grad.at(0, 0), (probs.at(0, 0) - 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad.at(0, 1), probs.at(0, 1) / 2.0, 1e-12);
  EXPECT_NEAR(grad.at(1, 2), (probs.at(1, 2) - 1.0) / 2.0, 1e-12);
  // Gradient rows sum to ~0 for rows with a target.
  double rowsum = grad.at(0, 0) + grad.at(0, 1) + grad.at(0, 2);
  EXPECT_NEAR(rowsum, 0.0, 1e-12);
}

TEST(Matrix, FrobeniusAndFiniteChecks) {
  Matrix m = Fill({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_TRUE(m.AllFinite());
  m.at(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
}

}  // namespace
}  // namespace robogexp
