#include "src/la/sparse.h"

#include <gtest/gtest.h>

namespace robogexp {
namespace {

TEST(SparseMatrix, BuildSumsDuplicates) {
  auto s = SparseMatrix::Build(2, 2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 5.0}});
  EXPECT_EQ(s.nnz(), 2);
  Matrix x(2, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 1.0;
  const Matrix y = s.Multiply(x);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y.at(1, 0), 5.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(3);
  const int64_t n = 40, m = 25;
  Matrix dense(n, m);
  std::vector<SparseMatrix::Triplet> trips;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      if (rng.Bernoulli(0.15)) {
        const double v = rng.Uniform(-1, 1);
        dense.at(i, j) = v;
        trips.push_back({i, j, v});
      }
    }
  }
  const auto s = SparseMatrix::Build(n, m, trips);
  const Matrix x = Matrix::Xavier(m, 6, &rng);
  const Matrix y1 = s.Multiply(x);
  const Matrix y2 = Matrix::Multiply(dense, x);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(y1.at(i, j), y2.at(i, j), 1e-12);
    }
  }
}

TEST(SparseMatrix, TransposeMultiplyMatchesDense) {
  Rng rng(5);
  const int64_t n = 30, m = 20;
  Matrix dense(n, m);
  std::vector<SparseMatrix::Triplet> trips;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      if (rng.Bernoulli(0.2)) {
        const double v = rng.Uniform(-1, 1);
        dense.at(i, j) = v;
        trips.push_back({i, j, v});
      }
    }
  }
  const auto s = SparseMatrix::Build(n, m, trips);
  const Matrix x = Matrix::Xavier(n, 4, &rng);
  const Matrix y1 = s.TransposeMultiply(x);
  const Matrix y2 = Matrix::Multiply(dense.Transposed(), x);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.at(i, j), y2.at(i, j), 1e-12);
    }
  }
}

TEST(SparseMatrix, EmptyMatrixMultiplies) {
  const auto s = SparseMatrix::Build(3, 3, {});
  Matrix x(3, 2);
  x.Fill(1.0);
  const Matrix y = s.Multiply(x);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y.at(i, 0), 0.0);
  }
}

TEST(SparseMatrixDeath, OutOfRangeTripletAborts) {
  EXPECT_DEATH(SparseMatrix::Build(2, 2, {{2, 0, 1.0}}), "RCW_CHECK");
}

}  // namespace
}  // namespace robogexp
