// Shared deterministic test fixtures: small graphs and cached trained models.
#ifndef ROBOGEXP_TESTS_TESTING_FIXTURES_H_
#define ROBOGEXP_TESTS_TESTING_FIXTURES_H_

#include <memory>

#include "src/gnn/trainer.h"
#include "src/graph/graph.h"

namespace robogexp::testing {

/// Path graph 0-1-...-n-1 with 2-class features (first half / second half).
Graph MakePathGraph(int n);

/// Two hub-and-satellite communities (classes 0 and 1) joined by two
/// bridges; only hubs 0 and 6 carry strong class features, so satellite
/// predictions are neighborhood-driven (CWs exist). Deterministic.
Graph MakeTwoCommunityGraph();

/// The satellite (non-hub) nodes of MakeTwoCommunityGraph — the nodes with
/// meaningful counterfactual witnesses.
std::vector<NodeId> TwoCommunitySatellites();

/// A mid-size SBM (240 nodes, 4 classes) for heavier unit tests.
Graph MakeSmallSbm(uint64_t seed = 3);

struct TrainedFixture {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GnnModel> model;
  std::vector<NodeId> train_nodes;
};

/// Cached APPNP trained on MakeTwoCommunityGraph (near-perfect accuracy).
const TrainedFixture& TwoCommunityAppnp();

/// Cached GCN trained on MakeTwoCommunityGraph.
const TrainedFixture& TwoCommunityGcn();

/// Cached APPNP trained on MakeSmallSbm.
const TrainedFixture& SmallSbmAppnp();

/// Cached GCN trained on MakeSmallSbm.
const TrainedFixture& SmallSbmGcn();

}  // namespace robogexp::testing

#endif  // ROBOGEXP_TESTS_TESTING_FIXTURES_H_
