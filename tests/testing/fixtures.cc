#include "tests/testing/fixtures.h"

#include "src/datasets/synthetic.h"

namespace robogexp::testing {

Graph MakePathGraph(int n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) RCW_CHECK(g.AddEdge(u, u + 1).ok());
  Matrix x(n, 4);
  std::vector<Label> labels(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    const Label l = u < n / 2 ? 0 : 1;
    labels[static_cast<size_t>(u)] = l;
    x.at(u, l) = 1.0;
    x.at(u, 2 + l) = 0.5;
  }
  g.SetFeatures(std::move(x));
  g.SetLabels(std::move(labels), 2);
  return g;
}

Graph MakeTwoCommunityGraph() {
  // Two hub-and-satellite communities joined by two bridges. Only the hubs
  // (nodes 0 and 6) carry strong class features; satellites carry a weak
  // contrarian signal, so a satellite's prediction is decided by its
  // connection to the hub — guaranteeing that counterfactual witnesses
  // exist (removing the hub-facing edges flips the label).
  Graph g(12);
  for (NodeId c : {NodeId{0}, NodeId{6}}) {
    for (NodeId s = c + 1; s < c + 6; ++s) RCW_CHECK(g.AddEdge(c, s).ok());
    for (NodeId s = c + 1; s < c + 5; ++s) RCW_CHECK(g.AddEdge(s, s + 1).ok());
  }
  RCW_CHECK(g.AddEdge(2, 8).ok());
  RCW_CHECK(g.AddEdge(4, 10).ok());

  Matrix x(12, 8);
  std::vector<Label> labels(12);
  for (NodeId u = 0; u < 12; ++u) {
    const Label l = u < 6 ? 0 : 1;
    labels[static_cast<size_t>(u)] = l;
    if (u == 0 || u == 6) {
      x.at(u, l * 2) = 2.0;
      x.at(u, l * 2 + 1) = 2.0;
    } else {
      // Weak signal for the *other* class.
      const Label o = 1 - l;
      x.at(u, o * 2) = 0.3;
      x.at(u, 4 + (u % 4)) = 0.1;
    }
  }
  g.SetFeatures(std::move(x));
  g.SetLabels(std::move(labels), 2);
  return g;
}

std::vector<NodeId> TwoCommunitySatellites() {
  return {1, 2, 3, 4, 5, 7, 8, 9, 10, 11};
}

Graph MakeSmallSbm(uint64_t seed) {
  SbmOptions opts;
  opts.num_nodes = 240;
  opts.num_classes = 4;
  opts.avg_degree = 6.0;
  opts.homophily = 0.85;
  opts.feature_dim = 32;
  opts.signature_bits = 6;
  opts.noise = 0.02;
  opts.seed = seed;
  return MakeSbmGraph(opts);
}

namespace {

TrainedFixture MakeFixture(Graph graph, bool appnp) {
  TrainedFixture f;
  f.graph = std::make_unique<Graph>(std::move(graph));
  TrainOptions opts;
  opts.epochs = 120;
  opts.hidden_dims = {16};
  opts.seed = 42;
  f.train_nodes = SampleTrainNodes(*f.graph, 0.6, 1);
  if (appnp) {
    f.model = TrainAppnp(*f.graph, f.train_nodes, opts);
  } else {
    f.model = TrainGcn(*f.graph, f.train_nodes, opts);
  }
  return f;
}

}  // namespace

const TrainedFixture& TwoCommunityAppnp() {
  static const TrainedFixture* f =
      new TrainedFixture(MakeFixture(MakeTwoCommunityGraph(), /*appnp=*/true));
  return *f;
}

const TrainedFixture& TwoCommunityGcn() {
  static const TrainedFixture* f =
      new TrainedFixture(MakeFixture(MakeTwoCommunityGraph(), /*appnp=*/false));
  return *f;
}

const TrainedFixture& SmallSbmAppnp() {
  static const TrainedFixture* f =
      new TrainedFixture(MakeFixture(MakeSmallSbm(), /*appnp=*/true));
  return *f;
}

const TrainedFixture& SmallSbmGcn() {
  static const TrainedFixture* f =
      new TrainedFixture(MakeFixture(MakeSmallSbm(), /*appnp=*/false));
  return *f;
}

}  // namespace robogexp::testing
