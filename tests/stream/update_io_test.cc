#include "src/stream/update_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "src/stream/update.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<UpdateBatch> SampleStream() {
  std::vector<UpdateBatch> stream(3);
  stream[0].Delete(0, 1);
  stream[0].Insert(2, 5);
  stream[1].Delete(3, 4);
  // stream[2] deliberately left empty (heartbeat batches are legal).
  return stream;
}

TEST(UpdateIo, RoundTrips) {
  TempFile file("stream_roundtrip.rsu");
  const std::vector<UpdateBatch> stream = SampleStream();
  ASSERT_TRUE(SaveUpdateStream(stream, file.path()).ok());
  const auto loaded = LoadUpdateStream(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), stream);
}

TEST(UpdateIo, EmptyStreamRoundTrips) {
  TempFile file("stream_empty.rsu");
  ASSERT_TRUE(SaveUpdateStream({}, file.path()).ok());
  const auto loaded = LoadUpdateStream(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(UpdateIo, CommentsAndBlankLinesAreIgnored) {
  TempFile file("stream_comments.rsu");
  {
    std::ofstream f(file.path());
    f << "# recorded 2026-07-31\nstream 1\n\nbatch 2\n+ 1 2\n# mid\n- 3 4\n";
  }
  const auto loaded = LoadUpdateStream(file.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].updates.size(), 2u);
  EXPECT_EQ(loaded.value()[0].updates[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(loaded.value()[0].updates[1].kind, UpdateKind::kDelete);
}

TEST(UpdateIo, RejectsMalformedFiles) {
  TempFile file("stream_bad.rsu");
  const std::vector<std::string> bad = {
      "",                          // empty
      "batch 1\n+ 0 1\n",          // data before header
      "stream 1\n+ 0 1\n",         // update before batch
      "stream 1\nbatch 1\n+ 2 2\n",  // self-loop
      "stream 1\nbatch 1\n* 0 1\n",  // unknown tag
      "stream 1\nbatch 1\n+ 0\n",    // truncated update
      "stream 2\nbatch 1\n+ 0 1\n",  // fewer batches than declared
      "stream 1\nbatch 2\n+ 0 1\n",  // batch shorter than declared
      "stream 1\nbatch 1\n+ 0 1\n- 2 3\n",    // batch longer than declared
      "stream 1\nbatch 2\n+ 0 1\nbatch 0\n",  // truncated before next batch
      "stream 1\nbatch 1\n+ 0 1\nstream 2\nbatch 1\n- 2 3\n",  // concatenated
  };
  for (const std::string& contents : bad) {
    {
      std::ofstream f(file.path());
      f << contents;
    }
    EXPECT_FALSE(LoadUpdateStream(file.path()).ok()) << contents;
  }
  EXPECT_FALSE(LoadUpdateStream(::testing::TempDir() + "missing.rsu").ok());
}

TEST(UpdateApply, AppliesInsertsAndDeletes) {
  Graph g = testing::MakePathGraph(6);  // edges 0-1, 1-2, ..., 4-5
  UpdateBatch batch;
  batch.Delete(1, 2);
  batch.Insert(0, 3);
  const auto r = ApplyUpdateBatch(&g, batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_EQ(r.value().rejected, 0);
  EXPECT_EQ(r.value().deleted, std::vector<Edge>{Edge(1, 2)});
  EXPECT_EQ(r.value().inserted, std::vector<Edge>{Edge(0, 3)});
  EXPECT_EQ(r.value().graph_version, g.mutation_version());
}

TEST(UpdateApply, CountsNoOpsAsRejected) {
  Graph g = testing::MakePathGraph(4);
  UpdateBatch batch;
  batch.Insert(0, 1);  // already present
  batch.Delete(0, 3);  // absent
  const auto r = ApplyUpdateBatch(&g, batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rejected, 2);
  EXPECT_TRUE(r.value().Flips().empty());
}

TEST(UpdateApply, InsertThenDeleteCancelsWithinABatch) {
  Graph g = testing::MakePathGraph(4);
  const uint64_t v0 = g.mutation_version();
  UpdateBatch batch;
  batch.Insert(0, 2);
  batch.Delete(0, 2);
  const auto r = ApplyUpdateBatch(&g, batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(r.value().Flips().empty()) << "net effect must be empty";
  // Since the plan/commit split, a fully-canceled batch commits nothing:
  // the graph is untouched and the version must NOT advance (no spurious
  // cache invalidation for a no-op).
  EXPECT_EQ(g.mutation_version(), v0) << "no-op batch must not mutate";
}

TEST(UpdateApply, ValidatesBeforeApplying) {
  Graph g = testing::MakePathGraph(4);
  UpdateBatch batch;
  batch.Delete(0, 1);   // valid...
  batch.Insert(0, 99);  // ...but a later update is out of range
  const auto r = ApplyUpdateBatch(&g, batch);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(g.HasEdge(0, 1)) << "failed batch must not half-apply";
}

TEST(UpdateSample, StreamReplaysConsistently) {
  const Graph g = testing::MakeTwoCommunityGraph();
  Rng rng(7);
  StreamSampleOptions opts;
  opts.num_batches = 12;
  opts.ops_per_batch = 3;
  opts.insert_fraction = 0.4;
  const auto stream = SampleUpdateStream(g, opts, &rng);
  ASSERT_EQ(stream.size(), 12u);
  // Replaying the stream must hit zero no-ops: every delete targets a
  // present edge, every insert an absent pair.
  Graph replay = g;
  int total_ops = 0;
  for (const UpdateBatch& batch : stream) {
    const auto r = ApplyUpdateBatch(&replay, batch);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().rejected, 0);
    total_ops += static_cast<int>(batch.size());
  }
  EXPECT_GT(total_ops, 0);
}

// Seed-determinism regression: the same seed must serialize to a
// byte-identical .rsu file — any unordered-container iteration leaking
// into the sampling path shows up here as flaky bytes.
TEST(UpdateSample, SameSeedSerializesByteIdentically) {
  const Graph g = testing::MakeTwoCommunityGraph();
  StreamSampleOptions opts;
  opts.num_batches = 12;
  opts.ops_per_batch = 3;
  opts.insert_fraction = 0.4;
  opts.focus_nodes = {0, 6};
  opts.hop_radius = 2;
  auto serialize = [&](uint64_t seed, const std::string& name) {
    Rng rng(seed);
    const auto stream = SampleUpdateStream(g, opts, &rng);
    TempFile file(name);
    EXPECT_TRUE(SaveUpdateStream(stream, file.path()).ok());
    std::ifstream f(file.path());
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
  };
  const std::string a = serialize(7, "det_a.rsu");
  const std::string b = serialize(7, "det_b.rsu");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And the seed genuinely matters.
  EXPECT_NE(a, serialize(8, "det_c.rsu"));
}

TEST(UpdateSample, AvoidKeysAreNeverDeleted) {
  const Graph g = testing::MakeTwoCommunityGraph();
  StreamSampleOptions opts;
  opts.num_batches = 30;
  opts.ops_per_batch = 2;
  opts.insert_fraction = 0.2;
  // Protect the hub stars of both communities.
  for (NodeId s = 1; s <= 5; ++s) opts.avoid_keys.insert(PairKey(0, s));
  for (NodeId s = 7; s <= 11; ++s) opts.avoid_keys.insert(PairKey(6, s));
  Rng rng(5);
  int deletes = 0;
  for (const UpdateBatch& batch : SampleUpdateStream(g, opts, &rng)) {
    for (const EdgeUpdate& up : batch.updates) {
      if (up.kind != UpdateKind::kDelete) continue;
      ++deletes;
      EXPECT_EQ(opts.avoid_keys.count(PairKey(up.u, up.v)), 0u)
          << "deleted protected pair (" << up.u << "," << up.v << ")";
    }
  }
  EXPECT_GT(deletes, 0);
}

TEST(UpdateSample, FocusKeepsUpdatesLocal) {
  const Graph g = testing::MakeTwoCommunityGraph();
  Rng rng(11);
  StreamSampleOptions opts;
  opts.num_batches = 8;
  opts.ops_per_batch = 2;
  opts.focus_nodes = {1};
  opts.hop_radius = 1;
  const FullView full(&g);
  const std::vector<NodeId> ball = KHopBall(full, {1}, 1);
  const std::unordered_set<NodeId> allowed(ball.begin(), ball.end());
  for (const UpdateBatch& batch : SampleUpdateStream(g, opts, &rng)) {
    for (const EdgeUpdate& up : batch.updates) {
      EXPECT_TRUE(allowed.count(up.u) > 0 && allowed.count(up.v) > 0)
          << "(" << up.u << "," << up.v << ") outside the focus ball";
    }
  }
}

}  // namespace
}  // namespace robogexp
