#include "src/stream/localize.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/datasets/synthetic.h"
#include "src/stream/update.h"
#include "src/util/rng.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

/// Reference implementation: v is affected by flip e iff an endpoint of e
/// lies within `radius` hops of v (ball intersection, one BFS per test node).
std::vector<NodeId> BruteForceAffected(const GraphView& view,
                                       const std::vector<Edge>& flips,
                                       const std::vector<NodeId>& test_nodes,
                                       int radius) {
  std::vector<NodeId> out;
  for (NodeId v : test_nodes) {
    const std::vector<NodeId> ball = KHopBall(view, v, radius);
    const std::unordered_set<NodeId> in_ball(ball.begin(), ball.end());
    for (const Edge& e : flips) {
      if (in_ball.count(e.u) > 0 || in_ball.count(e.v) > 0) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

TEST(Localize, MatchesBruteForceBallIntersection) {
  const Graph g = testing::MakeSmallSbm(5);
  const FullView full(&g);
  Rng rng(17);
  std::vector<NodeId> test_nodes;
  for (int i = 0; i < 12; ++i) {
    test_nodes.push_back(
        static_cast<NodeId>(
            rng.UniformInt(static_cast<uint64_t>(g.num_nodes()))));
  }
  const std::vector<Edge> all_edges = g.Edges();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Edge> flips;
    const int n_flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < n_flips; ++i) {
      flips.push_back(all_edges[rng.UniformInt(all_edges.size())]);
    }
    for (int radius : {1, 2, 3}) {
      LocalizeOptions opts;
      opts.radius = radius;
      const AffectedSet got = LocalizeFlips(full, flips, test_nodes, opts);
      EXPECT_EQ(got.test_nodes,
                BruteForceAffected(full, flips, test_nodes, radius))
          << "trial " << trial << " radius " << radius;
    }
  }
}

TEST(Localize, BallCoversEveryNodeWithinRadiusOfAFlip) {
  const Graph g = testing::MakeSmallSbm(9);
  const FullView full(&g);
  const std::vector<Edge> flips = {g.Edges()[3], g.Edges()[40]};
  LocalizeOptions opts;
  opts.radius = 2;
  const AffectedSet got = LocalizeFlips(full, flips, {}, opts);
  const std::unordered_set<NodeId> ball(got.ball.begin(), got.ball.end());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::vector<NodeId> vball = KHopBall(full, v, opts.radius);
    const std::unordered_set<NodeId> in_ball(vball.begin(), vball.end());
    bool reaches = false;
    for (const Edge& e : flips) {
      if (in_ball.count(e.u) > 0 || in_ball.count(e.v) > 0) reaches = true;
    }
    EXPECT_EQ(ball.count(v) > 0, reaches) << "node " << v;
  }
}

TEST(Localize, FlipAttributionChargesOnlyReachingFlips) {
  // Path 0-1-2-3-4-5-6-7: with radius 1, a flip of (0,1) reaches nodes
  // {0,1,2} only, and a flip of (6,7) reaches {5,6,7} only.
  const Graph g = testing::MakePathGraph(8);
  const FullView full(&g);
  const std::vector<Edge> flips = {Edge(0, 1), Edge(6, 7)};
  LocalizeOptions opts;
  opts.radius = 1;
  const AffectedSet got = LocalizeFlips(full, flips, {1, 3, 6}, opts);
  ASSERT_EQ(got.test_nodes, (std::vector<NodeId>{1, 6}));
  EXPECT_EQ(got.flips_per_test[0], (std::vector<size_t>{0}));
  EXPECT_EQ(got.flips_per_test[1], (std::vector<size_t>{1}));
}

TEST(Localize, DeletedEdgesStillCarryDistanceOnTheUnionView) {
  // Path 0-1-2-3-4-5 with both 1-2 and 3-4 deleted in one batch: the flip
  // (3,4) reaches node 1 only through the re-added edge 1-2 (two hops,
  // 3-2-1), a path the post-deletion graph no longer has. The union view
  // must still report it — the pre-update logits of node 1 depended on it.
  Graph g = testing::MakePathGraph(6);
  UpdateBatch batch;
  batch.Delete(1, 2);
  batch.Delete(3, 4);
  const auto applied = ApplyUpdateBatch(&g, batch);
  ASSERT_TRUE(applied.ok());
  const std::vector<Edge> flips = applied.value().Flips();  // sorted
  ASSERT_EQ(flips, (std::vector<Edge>{Edge(1, 2), Edge(3, 4)}));

  const FullView post(&g);
  const OverlayView union_view(&post, applied.value().deleted);
  LocalizeOptions opts;
  opts.radius = 2;
  const AffectedSet via_union = LocalizeFlips(union_view, flips, {1}, opts);
  ASSERT_EQ(via_union.test_nodes, (std::vector<NodeId>{1}));
  EXPECT_EQ(via_union.flips_per_test[0], (std::vector<size_t>{0, 1}));

  // On the post-deletion view alone the (3,4) flip cannot reach node 1 —
  // which is exactly why the localizer must run on the union view.
  const AffectedSet via_post = LocalizeFlips(post, flips, {1}, opts);
  ASSERT_EQ(via_post.test_nodes, (std::vector<NodeId>{1}));
  EXPECT_EQ(via_post.flips_per_test[0], (std::vector<size_t>{0}));
}

TEST(Localize, PprRefinementDropsMasslessNodes) {
  // On a long path with a generous hop radius, the hop-ball test reaches far
  // nodes whose PPR mass on the flipped endpoints is negligible; a high
  // threshold prunes them, while the nearest node survives.
  const Graph g = testing::MakePathGraph(12);
  const FullView full(&g);
  const std::vector<Edge> flips = {Edge(0, 1)};
  LocalizeOptions ball_only;
  ball_only.radius = 8;
  const AffectedSet loose = LocalizeFlips(full, flips, {1, 8}, ball_only);
  ASSERT_EQ(loose.test_nodes, (std::vector<NodeId>{1, 8}));

  LocalizeOptions refined = ball_only;
  refined.use_ppr = true;
  refined.ppr_threshold = 0.05;
  refined.ppr.alpha = 0.5;
  const AffectedSet tight = LocalizeFlips(full, flips, {1, 8}, refined);
  EXPECT_EQ(tight.test_nodes, (std::vector<NodeId>{1}));
}

TEST(Localize, MaintenanceRadiusCoversModelAndSearchLocality) {
  const auto& f = testing::TwoCommunityAppnp();
  WitnessConfig cfg;
  cfg.graph = f.graph.get();
  cfg.model = f.model.get();
  cfg.hop_radius = 2;
  EXPECT_GE(MaintenanceRadius(cfg), cfg.hop_radius);
  EXPECT_GE(MaintenanceRadius(cfg), cfg.model->receptive_hops());
  WitnessConfig flip = cfg;
  flip.disturbance = DisturbanceModel::kFlip;
  EXPECT_GE(MaintenanceRadius(flip), MaintenanceRadius(cfg));
}

TEST(Localize, EmptyFlipsAffectNothing) {
  const Graph g = testing::MakePathGraph(4);
  const FullView full(&g);
  const AffectedSet got = LocalizeFlips(full, {}, {0, 1}, LocalizeOptions{});
  EXPECT_TRUE(got.ball.empty());
  EXPECT_TRUE(got.test_nodes.empty());
}

}  // namespace
}  // namespace robogexp
