#include "src/stream/maintain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/explain/verify.h"
#include "src/stream/update.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

WitnessConfig Config(const Graph* graph, const GnnModel* model,
                     std::vector<NodeId> nodes, int k = 2, int b = 1) {
  WitnessConfig cfg;
  cfg.graph = graph;
  cfg.model = model;
  cfg.test_nodes = std::move(nodes);
  cfg.k = k;
  cfg.local_budget = b;
  cfg.hop_radius = 2;
  return cfg;
}

/// Per-test-node RCW verdict of `witness` on cfg's (current) graph.
std::vector<std::string> Verdicts(const WitnessConfig& cfg,
                                  const Witness& witness) {
  std::vector<std::string> out;
  for (NodeId v : cfg.test_nodes) {
    WitnessConfig one = cfg;
    one.test_nodes = {v};
    out.push_back(VerifyRcw(one, witness).ok ? "ok" : "fail");
  }
  return out;
}

TEST(Maintain, ApplyBeforeInitializeFails) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1}), {});
  EXPECT_FALSE(m.Apply(UpdateBatch{}).ok());
}

TEST(Maintain, DetectsOutsideMutation) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1}), {});
  m.Initialize();
  ASSERT_TRUE(graph.RemoveEdge(0, 1).ok());  // behind the maintainer's back
  const auto r = m.Apply(UpdateBatch{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Maintain, UntouchedBatchCostsNoInference) {
  const auto& f = testing::SmallSbmAppnp();
  Graph graph = *f.graph;
  const auto nodes = SelectExplainableTestNodes(*f.model, *f.graph, 1, {}, 33);
  ASSERT_EQ(nodes.size(), 1u);
  const NodeId test_node = nodes[0];
  const WitnessConfig cfg = Config(&graph, f.model.get(), {test_node});
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);

  // Find an edge entirely outside the test node's maintenance ball.
  const FullView full(&graph);
  const std::vector<NodeId> ball =
      KHopBall(full, test_node, MaintenanceRadius(cfg));
  const std::unordered_set<NodeId> near(ball.begin(), ball.end());
  Edge victim(kInvalidNode, kInvalidNode);
  for (const Edge& e : graph.Edges()) {
    if (near.count(e.u) == 0 && near.count(e.v) == 0) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim.u, kInvalidNode)
      << "fixture too dense: every edge is near node 0";

  UpdateBatch far;
  far.Delete(victim.u, victim.v);
  const auto r = m.Apply(far);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().action, MaintainAction::kUntouched);
  EXPECT_EQ(r.value().affected_tests, 0);
  EXPECT_EQ(r.value().inference_calls, 0);
  EXPECT_FALSE(graph.HasEdge(victim.u, victim.v))
      << "the batch must still be applied";
}

TEST(Maintain, NoOpBatchIsUntouched) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1}), {});
  m.Initialize();
  UpdateBatch noop;
  noop.Delete(0, 11);  // not an edge
  const auto r = m.Apply(noop);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, MaintainAction::kUntouched);
  EXPECT_EQ(r.value().rejected, 1);
  EXPECT_EQ(r.value().inference_calls, 0);
}

TEST(Maintain, CertifiedPathConsumesBudgetAndKeepsVerdicts) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1}, /*k=*/3);
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);
  ASSERT_EQ(m.RemainingBudget(1), 3);

  // Remove a non-witness edge inside node 1's ball: a 1-flip disturbance the
  // certificate already quantified over.
  Edge victim(kInvalidNode, kInvalidNode);
  for (const Edge& e : graph.Edges()) {
    const bool near = (e.u == 1 || e.v == 1 || e.u == 2 || e.v == 2);
    if (near && !m.witness().HasEdge(e.u, e.v)) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim.u, kInvalidNode) << "fixture has no certifiable edge";

  UpdateBatch batch;
  batch.Delete(victim.u, victim.v);
  const auto r = m.Apply(batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, MaintainAction::kCertified);
  EXPECT_TRUE(r.value().ok);
  EXPECT_EQ(m.RemainingBudget(1), 2);
  EXPECT_TRUE(VerifyRcw(cfg, m.witness()).ok);

  // Re-inserting the same pair refunds the budget (flip toggling).
  UpdateBatch undo;
  undo.Insert(victim.u, victim.v);
  const auto r2 = m.Apply(undo);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(m.RemainingBudget(1), 3);
}

TEST(Maintain, DeletedWitnessEdgeIsPrunedAndResecured) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1, 2});
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);
  ASSERT_GE(m.witness().num_edges(), 1u);
  const Edge victim = m.witness().Edges()[0];

  UpdateBatch batch;
  batch.Delete(victim.u, victim.v);
  const auto r = m.Apply(batch);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().action, MaintainAction::kUntouched);
  EXPECT_NE(r.value().action, MaintainAction::kCertified)
      << "flipping a protected pair is outside the certificate";
  EXPECT_FALSE(m.witness().HasEdge(victim.u, victim.v))
      << "deleted edges must not survive in the witness";
  for (const Edge& e : m.witness().Edges()) {
    EXPECT_TRUE(graph.HasEdge(e.u, e.v))
        << "witness edge (" << e.u << "," << e.v << ") not in the graph";
  }
}

TEST(Maintain, AdoptRevalidatesAnExternalWitness) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1, 7});
  const GenerateResult gen = GenerateRcw(cfg);
  ASSERT_TRUE(gen.unsecured.empty());

  WitnessMaintainer m(&graph, cfg, {});
  const MaintainReport r = m.Adopt(gen.witness);
  EXPECT_EQ(r.action, MaintainAction::kInitialized);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.resecured.empty()) << "a verified witness needs no repair";
  EXPECT_TRUE(VerifyRcw(cfg, m.witness()).ok);
}

/// The headline equivalence property: replaying a random update stream,
/// maintained witnesses must verify equivalently to regenerating from
/// scratch on every snapshot — sound (every node the maintainer claims
/// covered actually verifies) and never worse (every node from-scratch
/// generation can certify, maintenance certifies too). Exact per-node
/// equality is deliberately not asserted: the generator is heuristic, and a
/// warm-started re-secure can legitimately certify a node the from-scratch
/// search gives up on.
TEST(Maintain, RandomizedEquivalenceWithRegenerationOn50Batches) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1, 2, 7});

  StreamSampleOptions sopts;
  sopts.num_batches = 50;
  sopts.ops_per_batch = 1;
  sopts.insert_fraction = 0.35;
  sopts.focus_nodes = cfg.test_nodes;
  sopts.hop_radius = 2;
  Rng rng(23);
  const auto stream = SampleUpdateStream(graph, sopts, &rng);
  ASSERT_EQ(stream.size(), 50u);

  WitnessMaintainer m(&graph, cfg, {});
  m.Initialize();
  for (size_t b = 0; b < stream.size(); ++b) {
    const auto r = m.Apply(stream[b]);
    ASSERT_TRUE(r.ok()) << "batch " << b << ": " << r.status().ToString();
    // Scratch baseline on the same (already updated) graph.
    const GenerateResult scratch = GenerateRcw(cfg);
    const auto maintained = Verdicts(cfg, m.witness());
    const auto regenerated = Verdicts(cfg, scratch.witness);
    const auto uncovered = m.unsecured();
    for (size_t i = 0; i < cfg.test_nodes.size(); ++i) {
      const NodeId v = cfg.test_nodes[i];
      const bool covered =
          std::find(uncovered.begin(), uncovered.end(), v) == uncovered.end();
      if (covered) {
        EXPECT_EQ(maintained[i], "ok")
            << "batch " << b << " node " << v << " ("
            << MaintainActionName(r.value().action)
            << "): claimed coverage must verify";
      }
      EXPECT_TRUE(maintained[i] == "ok" || regenerated[i] == "fail")
          << "batch " << b << " node " << v
          << ": maintenance must never verify worse than regeneration";
    }
  }
}

TEST(Maintain, ParallelResecureKeepsVerdicts) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph seq_graph = *f.graph;
  Graph par_graph = *f.graph;
  const std::vector<NodeId> nodes = {1, 2, 7, 8};

  StreamSampleOptions sopts;
  sopts.num_batches = 10;
  sopts.ops_per_batch = 2;
  sopts.insert_fraction = 0.3;
  sopts.focus_nodes = nodes;
  sopts.hop_radius = 2;
  Rng rng(41);
  const auto stream = SampleUpdateStream(seq_graph, sopts, &rng);

  MaintainOptions seq_opts;
  MaintainOptions par_opts;
  par_opts.num_threads = 4;
  const WitnessConfig seq_cfg = Config(&seq_graph, f.model.get(), nodes);
  const WitnessConfig par_cfg = Config(&par_graph, f.model.get(), nodes);
  WitnessMaintainer seq(&seq_graph, seq_cfg, seq_opts);
  WitnessMaintainer par(&par_graph, par_cfg, par_opts);
  seq.Initialize();
  par.Initialize();
  for (size_t b = 0; b < stream.size(); ++b) {
    ASSERT_TRUE(seq.Apply(stream[b]).ok());
    ASSERT_TRUE(par.Apply(stream[b]).ok());
    EXPECT_EQ(Verdicts(seq_cfg, seq.witness()),
              Verdicts(par_cfg, par.witness()))
        << "batch " << b;
  }
}

TEST(Maintain, AsyncBatchingKeepsWitnessesAndActionsIdentical) {
  // The async batching front reroutes the maintainer's warms and the
  // verifier's per-contrast checks through a scheduler; every decision is
  // value-driven on bit-identical logits, so the maintained witness and the
  // per-batch actions must match the plain path exactly.
  const auto& f = testing::TwoCommunityAppnp();
  Graph plain_graph = *f.graph;
  Graph async_graph = *f.graph;
  const std::vector<NodeId> nodes = {1, 2, 7, 8};

  StreamSampleOptions sopts;
  sopts.num_batches = 8;
  sopts.ops_per_batch = 2;
  sopts.insert_fraction = 0.3;
  sopts.focus_nodes = nodes;
  sopts.hop_radius = 2;
  Rng rng(43);
  const auto stream = SampleUpdateStream(plain_graph, sopts, &rng);

  MaintainOptions plain_opts;
  MaintainOptions async_opts;
  async_opts.async_batching = true;
  async_opts.scheduler.deadline_us = 300;
  const WitnessConfig plain_cfg = Config(&plain_graph, f.model.get(), nodes);
  const WitnessConfig async_cfg = Config(&async_graph, f.model.get(), nodes);
  WitnessMaintainer plain(&plain_graph, plain_cfg, plain_opts);
  WitnessMaintainer async_m(&async_graph, async_cfg, async_opts);
  ASSERT_EQ(async_m.scheduler() != nullptr, true);
  plain.Initialize();
  async_m.Initialize();
  EXPECT_TRUE(plain.witness() == async_m.witness());
  for (size_t b = 0; b < stream.size(); ++b) {
    const auto pr = plain.Apply(stream[b]);
    const auto ar = async_m.Apply(stream[b]);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(ar.ok());
    EXPECT_EQ(pr.value().action, ar.value().action) << "batch " << b;
    EXPECT_EQ(pr.value().resecured, ar.value().resecured) << "batch " << b;
    EXPECT_EQ(pr.value().unsecured, ar.value().unsecured) << "batch " << b;
    EXPECT_TRUE(plain.witness() == async_m.witness()) << "batch " << b;
  }
}

// Regression for the maintained-serving bit-identity caveat: APPNP's PPR
// push is not receptive-field-local, so per-ball invalidation is unsound
// for it — a base update can move logits of nodes far outside every
// touched ball. Apply() must escalate to full-view invalidation so every
// cached full-view entry re-reads bitwise-fresh afterwards.
TEST(Maintain, NonReceptiveLocalModelServesFreshLogitsEverywhereAfterApply) {
  const auto& f = testing::TwoCommunityAppnp();
  ASSERT_FALSE(f.model->InferenceIsReceptiveLocal());
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1});
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);

  // Warm the full view for EVERY node — including nodes outside any
  // maintenance ball of the coming batch — so stale survivors would be
  // served from cache below.
  std::vector<NodeId> all;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) all.push_back(v);
  m.engine().Warm(InferenceEngine::kFullView, all);

  // Delete a community bridge: APPNP propagation reaches across it, so
  // logits move at nodes far outside any touched ball.
  UpdateBatch batch;
  batch.Delete(4, 10);
  ASSERT_TRUE(graph.HasEdge(4, 10));
  ASSERT_TRUE(m.Apply(batch).ok());

  InferenceEngine fresh(cfg.model, &graph);
  for (NodeId v : all) {
    EXPECT_EQ(m.engine().Logits(InferenceEngine::kFullView, v),
              fresh.Logits(InferenceEngine::kFullView, v))
        << "stale cached logits at node " << v;
  }
}

/// Records Apply()'s event stream for the epoch-sequence test.
struct RecordingListener : MaintenanceListener {
  std::vector<std::string> events;
  std::vector<MaintenanceEpoch> opened;

  void EpochOpened(const MaintenanceEpoch& epoch) override {
    events.push_back("opened");
    opened.push_back(epoch);
  }
  void EpochBaseSecured(uint64_t) override {
    events.push_back("base_secured");
  }
  void EpochRoundSecured(uint64_t, const std::vector<NodeId>&) override {
    events.push_back("round_secured");
  }
  void EpochClosed(uint64_t) override { events.push_back("closed"); }
};

TEST(Maintain, ApplyEmitsOpenedBaseSecuredClosedInOrder) {
  const auto& f = testing::TwoCommunityGcn();
  Graph graph = *f.graph;
  const WitnessConfig cfg = Config(&graph, f.model.get(), {1, 7});
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);

  RecordingListener listener;
  m.AddListener(&listener);

  // A batch inside node 1's ball: a full epoch must run Opened →
  // BaseSecured → (RoundSecured)* → Closed, with the published ball
  // matching the report's invalidation count.
  UpdateBatch batch;
  batch.Delete(1, 2);
  const auto r = m.Apply(batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ASSERT_GE(listener.events.size(), 3u);
  EXPECT_EQ(listener.events.front(), "opened");
  EXPECT_EQ(listener.events[1], "base_secured");
  EXPECT_EQ(listener.events.back(), "closed");
  for (size_t i = 2; i + 1 < listener.events.size(); ++i) {
    EXPECT_EQ(listener.events[i], "round_secured") << "event " << i;
  }
  ASSERT_EQ(listener.opened.size(), 1u);
  EXPECT_GT(listener.opened[0].id, 0u);
  EXPECT_FALSE(listener.opened[0].whole_graph);  // GCN is receptive-local
  EXPECT_EQ(static_cast<int>(listener.opened[0].ball.size()),
            r.value().ball_nodes);

  // An untouched batch far from every ball opens an epoch too (the commit
  // still mutates the base graph), and closes it in order.
  listener.events.clear();
  listener.opened.clear();
  m.RemoveListener(&listener);
  const auto r2 = m.Apply(UpdateBatch{});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(listener.events.empty()) << "removed listener still notified";
}

}  // namespace
}  // namespace robogexp
