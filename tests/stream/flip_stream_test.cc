// Flip-mode streaming hardening: randomized equivalence suites for
// insertion-bearing update streams under DisturbanceModel::kFlip — the PRI
// adversary's insertion proposals flowing through the localizer's
// +receptive slack, and maintained-vs-regenerated verdict identity over
// seeded insertion-heavy streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/explain/robogexp.h"
#include "src/explain/verify.h"
#include "src/stream/localize.h"
#include "src/stream/maintain.h"
#include "src/stream/update.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

WitnessConfig FlipConfig(const Graph* graph, const GnnModel* model,
                         std::vector<NodeId> nodes, int k = 2, int b = 1) {
  WitnessConfig cfg;
  cfg.graph = graph;
  cfg.model = model;
  cfg.test_nodes = std::move(nodes);
  cfg.k = k;
  cfg.local_budget = b;
  cfg.hop_radius = 2;
  cfg.disturbance = DisturbanceModel::kFlip;
  return cfg;
}

/// Per-test-node RCW verdict of `witness` on cfg's (current) graph.
std::vector<std::string> Verdicts(const WitnessConfig& cfg,
                                  const Witness& witness) {
  std::vector<std::string> out;
  for (NodeId v : cfg.test_nodes) {
    WitnessConfig one = cfg;
    one.test_nodes = {v};
    out.push_back(VerifyRcw(one, witness).ok ? "ok" : "fail");
  }
  return out;
}

TEST(FlipStream, MaintenanceRadiusPaysInsertionSlackOnlyInFlipMode) {
  const auto& f = testing::TwoCommunityAppnp();
  WitnessConfig cfg = FlipConfig(f.graph.get(), f.model.get(), {1});
  const int flip_radius = MaintenanceRadius(cfg);
  cfg.disturbance = DisturbanceModel::kRemovalOnly;
  const int removal_radius = MaintenanceRadius(cfg);
  // An inserted pair can shortcut up to hop_radius of distance into the
  // receptive field; removals only ever increase distances.
  EXPECT_EQ(flip_radius, cfg.hop_radius + f.model->receptive_hops());
  EXPECT_GT(flip_radius, removal_radius);
}

/// Soundness of the insertion slack, brute-forced: over seeded random
/// insertion batches, every test node whose RCW verdict the insertions
/// actually changed must be in the localizer's affected set (computed with
/// MaintenanceRadius in flip mode). If the +receptive slack were too small,
/// a PRI-reachable insertion could flip a verdict while maintenance treats
/// the node as untouched.
TEST(FlipStream, LocalizerCoversEveryVerdictChangeUnderRandomInsertions) {
  const auto& f = testing::TwoCommunityAppnp();
  const std::vector<NodeId> test_nodes = {1, 2, 7};

  for (const uint64_t seed : {3ull, 19ull, 57ull}) {
    Graph graph = *f.graph;
    WitnessConfig cfg = FlipConfig(&graph, f.model.get(), test_nodes);
    const GenerateResult gen = GenerateRcw(cfg);
    const auto before = Verdicts(cfg, gen.witness);

    // Insertion-only batches (insert_fraction 1.0): the PRI adversary's
    // favorite disturbance shape in flip mode.
    StreamSampleOptions sopts;
    sopts.num_batches = 6;
    sopts.ops_per_batch = 2;
    sopts.insert_fraction = 1.0;
    sopts.focus_nodes = test_nodes;
    sopts.hop_radius = 3;
    Rng rng(seed);
    const auto stream = SampleUpdateStream(graph, sopts, &rng);

    for (size_t b = 0; b < stream.size(); ++b) {
      const auto applied = ApplyUpdateBatch(&graph, stream[b]);
      ASSERT_TRUE(applied.ok());
      const std::vector<Edge> flips = applied.value().Flips();
      if (flips.empty()) continue;

      // Insertions only: the union graph (post-update + deleted edges) is
      // the post-update graph itself.
      const FullView union_view(&graph);
      LocalizeOptions lopts;
      lopts.radius = MaintenanceRadius(cfg);
      const AffectedSet affected =
          LocalizeFlips(union_view, flips, test_nodes, lopts);
      const std::unordered_set<NodeId> flagged(affected.test_nodes.begin(),
                                               affected.test_nodes.end());

      const auto after = Verdicts(cfg, gen.witness);
      for (size_t i = 0; i < test_nodes.size(); ++i) {
        if (after[i] != before[i]) {
          EXPECT_TRUE(flagged.count(test_nodes[i]) > 0)
              << "seed " << seed << " batch " << b << ": verdict of node "
              << test_nodes[i] << " changed (" << before[i] << " -> "
              << after[i] << ") but the localizer did not flag it";
        }
      }
    }
  }
}

/// The flip-mode analogue of the maintain suite's headline property, over
/// insertion-heavy seeded streams: every node the maintainer claims covered
/// must verify under flip-mode RCW (insertions included), and maintenance
/// must never verify worse than regenerating from scratch on the same
/// snapshot.
TEST(FlipStream, MaintainedVsRegeneratedVerdictIdentityOnInsertionStreams) {
  const auto& f = testing::TwoCommunityAppnp();
  for (const uint64_t seed : {5ull, 31ull}) {
    Graph graph = *f.graph;
    const WitnessConfig cfg =
        FlipConfig(&graph, f.model.get(), {1, 2, 7}, /*k=*/2);

    StreamSampleOptions sopts;
    sopts.num_batches = 15;
    sopts.ops_per_batch = 1;
    sopts.insert_fraction = 0.7;
    sopts.focus_nodes = cfg.test_nodes;
    sopts.hop_radius = 2;
    Rng rng(seed);
    const auto stream = SampleUpdateStream(graph, sopts, &rng);

    WitnessMaintainer m(&graph, cfg, {});
    m.Initialize();
    for (size_t b = 0; b < stream.size(); ++b) {
      const auto r = m.Apply(stream[b]);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " batch " << b << ": "
                          << r.status().ToString();
      const GenerateResult scratch = GenerateRcw(cfg);
      const auto maintained = Verdicts(cfg, m.witness());
      const auto regenerated = Verdicts(cfg, scratch.witness);
      const auto uncovered = m.unsecured();
      for (size_t i = 0; i < cfg.test_nodes.size(); ++i) {
        const NodeId v = cfg.test_nodes[i];
        const bool covered = std::find(uncovered.begin(), uncovered.end(),
                                       v) == uncovered.end();
        if (covered) {
          EXPECT_EQ(maintained[i], "ok")
              << "seed " << seed << " batch " << b << " node " << v << " ("
              << MaintainActionName(r.value().action)
              << "): claimed flip-mode coverage must verify";
        }
        EXPECT_TRUE(maintained[i] == "ok" || regenerated[i] == "fail")
            << "seed " << seed << " batch " << b << " node " << v
            << ": flip-mode maintenance verified worse than regeneration";
      }
    }
  }
}

/// Toggle identity: inserting and then deleting the same pair is a no-op
/// for the certificate — outstanding budget returns to full and verdicts
/// are unchanged. This is the insertion-side mirror of the removal-refund
/// test in maintain_test.cc.
TEST(FlipStream, InsertThenDeleteRefundsTheCertificate) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  const WitnessConfig cfg =
      FlipConfig(&graph, f.model.get(), {1}, /*k=*/3);
  WitnessMaintainer m(&graph, cfg, {});
  ASSERT_TRUE(m.Initialize().ok);
  const int budget = m.RemainingBudget(1);
  const auto before = Verdicts(cfg, m.witness());

  // A fresh pair adjacent to the test node's ball that is not an edge.
  Edge pair(kInvalidNode, kInvalidNode);
  for (NodeId w = 0; w < graph.num_nodes(); ++w) {
    if (w != 1 && !graph.HasEdge(1, w) &&
        m.witness().protected_pair_keys().count(PairKey(1, w)) == 0) {
      pair = Edge(1, w);
      break;
    }
  }
  ASSERT_NE(pair.u, kInvalidNode);

  UpdateBatch ins;
  ins.Insert(pair.u, pair.v);
  ASSERT_TRUE(m.Apply(ins).ok());
  UpdateBatch del;
  del.Delete(pair.u, pair.v);
  ASSERT_TRUE(m.Apply(del).ok());
  EXPECT_EQ(m.RemainingBudget(1), budget)
      << "a toggled pair must refund the consumed budget";
  EXPECT_EQ(Verdicts(cfg, m.witness()), before);
}

}  // namespace
}  // namespace robogexp
