#include "src/stream/portfolio_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/explain/verify.h"
#include "src/gnn/serialize.h"
#include "src/stream/maintain.h"
#include "src/stream/update.h"
#include "src/util/rng.h"
#include "tests/testing/fixtures.h"

namespace robogexp {
namespace {

WitnessConfig Config(const Graph* graph, const GnnModel* model,
                     std::vector<NodeId> nodes, int k = 2, int b = 1) {
  WitnessConfig cfg;
  cfg.graph = graph;
  cfg.model = model;
  cfg.test_nodes = std::move(nodes);
  cfg.k = k;
  cfg.local_budget = b;
  cfg.hop_radius = 2;
  return cfg;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void WriteAll(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

/// A hand-built state touching every section of the format.
PortfolioState SampleState() {
  PortfolioState state;
  state.witness.AddEdge(1, 2);
  state.witness.AddEdge(2, 3);
  state.witness.AddNode(7);
  state.witness.AddProtectedPair(4, 5);
  state.witness.AddProtectedPair(1, 9);
  state.unsecured = {3, 8};
  state.outstanding[1] = {Edge(1, 4), Edge(2, 6)};
  state.outstanding[3] = {Edge(3, 5)};
  state.mutation_version = 41;
  state.graph_fingerprint = 0xdeadbeefcafeull;
  state.model_fingerprint = 0x1234567890ull;
  return state;
}

TEST(PortfolioIo, SaveLoadRoundTrip) {
  const PortfolioState state = SampleState();
  const std::string path = TempPath("roundtrip.rwp");
  ASSERT_TRUE(SavePortfolio(state, path).ok());

  const auto loaded = LoadPortfolio(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PortfolioState& got = loaded.value();
  EXPECT_TRUE(got.witness == state.witness);
  EXPECT_EQ(got.witness.ProtectedKeys(), state.witness.ProtectedKeys());
  EXPECT_EQ(got.unsecured, state.unsecured);
  EXPECT_EQ(got.outstanding, state.outstanding);
  EXPECT_EQ(got.mutation_version, state.mutation_version);
  EXPECT_EQ(got.graph_fingerprint, state.graph_fingerprint);
  EXPECT_EQ(got.model_fingerprint, state.model_fingerprint);
  std::remove(path.c_str());
}

TEST(PortfolioIo, MissingFileIsNotFound) {
  const auto r = LoadPortfolio(TempPath("does-not-exist.rwp"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PortfolioIo, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.rwp");
  ASSERT_TRUE(SavePortfolio(SampleState(), path).ok());
  const std::string full = ReadAll(path);

  // Chop the file at every line boundary: no prefix short of the full file
  // may load (the declared counts + end trailer guarantee it).
  size_t pos = 0;
  int prefixes = 0;
  while ((pos = full.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos == full.size()) break;
    WriteAll(path, full.substr(0, pos));
    const auto r = LoadPortfolio(path);
    EXPECT_FALSE(r.ok()) << "prefix of " << pos << " bytes loaded";
    if (r.ok()) break;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    ++prefixes;
  }
  EXPECT_GT(prefixes, 5);
  std::remove(path.c_str());
}

TEST(PortfolioIo, CorruptFilesAreRejected) {
  const std::string path = TempPath("corrupt.rwp");
  const std::string cases[] = {
      // Unknown tag.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 0\n"
      "outstanding 0 0\nbogus 7\nend\n",
      // Wrong format version.
      "rwp 2\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 0\n"
      "outstanding 0 0\nend\n",
      // Data before the header.
      "graph 1 2\nrwp 1\n",
      // More nodes than declared.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 1 0 0\nn 1\nn 2\nunsecured 0\n"
      "outstanding 0 0\nend\n",
      // Fewer unsecured entries than declared.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 2\nu 1\n"
      "outstanding 0 0\nend\n",
      // Outstanding flips shorter than the per-line count.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 0\n"
      "outstanding 1 2\no 1 2 3 4\nend\n",
      // Self-loop witness edge.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 2 1 0\nn 1\nn 2\ne 2 2\n"
      "unsecured 0\noutstanding 0 0\nend\n",
      // Duplicate outstanding node.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 0\n"
      "outstanding 2 2\no 1 1 2 3\no 1 1 4 5\nend\n",
      // Trailing data after end.
      "rwp 1\ngraph 1 2\nmodel 3\nwitness 0 0 0\nunsecured 0\n"
      "outstanding 0 0\nend\nu 3\n",
  };
  for (const std::string& text : cases) {
    WriteAll(path, text);
    const auto r = LoadPortfolio(path);
    ASSERT_FALSE(r.ok()) << "accepted: " << text;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(PortfolioIo, GraphFingerprintTracksContentNotHistory) {
  Graph a = testing::MakeTwoCommunityGraph();
  const uint64_t fp0 = GraphFingerprint(a);
  ASSERT_TRUE(a.RemoveEdge(0, 1).ok());
  const uint64_t fp1 = GraphFingerprint(a);
  EXPECT_NE(fp0, fp1);
  // Same content again — the fingerprint returns even though the
  // mutation_version moved on (content-addressed, not history-addressed).
  ASSERT_TRUE(a.AddEdge(0, 1).ok());
  EXPECT_EQ(GraphFingerprint(a), fp0);

  // An independently built identical graph agrees.
  const Graph b = testing::MakeTwoCommunityGraph();
  EXPECT_EQ(GraphFingerprint(b), fp0);
}

TEST(PortfolioIo, ModelFingerprintSurvivesSaveLoad) {
  const auto& f = testing::TwoCommunityAppnp();
  const uint64_t fp = ModelFingerprint(*f.model);
  const std::string path = TempPath("model_fp.gnn");
  ASSERT_TRUE(SaveModel(*f.model, path).ok());
  const auto reloaded = LoadModel(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ModelFingerprint(*reloaded.value()), fp);

  // A different model disagrees.
  const auto& g = testing::TwoCommunityGcn();
  EXPECT_NE(ModelFingerprint(*g.model), fp);
  std::remove(path.c_str());
}

std::vector<UpdateBatch> SampleStream(const Graph& graph, double insert_frac,
                                      uint64_t seed, int batches = 5) {
  StreamSampleOptions sopts;
  sopts.num_batches = batches;
  sopts.ops_per_batch = 2;
  sopts.insert_fraction = insert_frac;
  sopts.focus_nodes = {1, 2, 3};
  sopts.hop_radius = 2;
  Rng rng(seed);
  return SampleUpdateStream(graph, sopts, &rng);
}

TEST(PortfolioIo, FastForwardReplaysExactlyTheCoveredPrefix) {
  const Graph base = testing::MakeTwoCommunityGraph();
  const auto stream = SampleStream(base, 0.4, 17);

  // Record the version at every batch boundary of a straight replay.
  Graph straight = base;
  std::vector<uint64_t> versions = {straight.mutation_version()};
  for (const UpdateBatch& b : stream) {
    ASSERT_TRUE(ApplyUpdateBatch(&straight, b).ok());
    versions.push_back(straight.mutation_version());
  }

  for (size_t j = 0; j < versions.size(); ++j) {
    Graph g = base;
    const auto consumed = FastForwardGraph(&g, stream, versions[j]);
    ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
    EXPECT_LE(consumed.value(), j);  // no-op batches need not be consumed
    EXPECT_EQ(g.mutation_version(), versions[j]);
  }

  // A target beyond the stream's final version cannot be reached.
  Graph g = base;
  const auto beyond = FastForwardGraph(&g, stream, versions.back() + 1000);
  ASSERT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.status().code(), StatusCode::kInvalidArgument);

  // A target behind the (already advanced) graph is rejected.
  Graph ahead = base;
  for (const UpdateBatch& b : stream) {
    ASSERT_TRUE(ApplyUpdateBatch(&ahead, b).ok());
  }
  if (ahead.mutation_version() > base.mutation_version()) {
    const auto behind =
        FastForwardGraph(&ahead, stream, base.mutation_version());
    ASSERT_FALSE(behind.ok());
    EXPECT_EQ(behind.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PortfolioIo, AdoptStateExactMatchIsVerbatimAndFree) {
  const auto& f = testing::TwoCommunityAppnp();
  const auto stream = SampleStream(*f.graph, 0.0, 23);

  // Session one: initialize, maintain a few batches, export.
  Graph graph_a = *f.graph;
  WitnessMaintainer a(&graph_a, Config(&graph_a, f.model.get(), {1, 2, 3}),
                      {});
  a.Initialize();
  for (const UpdateBatch& b : stream) ASSERT_TRUE(a.Apply(b).ok());
  const PortfolioState exported = a.ExportState();

  const std::string path = TempPath("exact.rwp");
  ASSERT_TRUE(SavePortfolio(exported, path).ok());
  const auto loaded = LoadPortfolio(path);
  ASSERT_TRUE(loaded.ok());

  // Session two (the restart): fresh graph fast-forwarded to the
  // checkpoint, then a verbatim zero-inference adopt.
  Graph graph_b = *f.graph;
  ASSERT_TRUE(
      FastForwardGraph(&graph_b, stream, loaded.value().mutation_version)
          .ok());
  WitnessMaintainer b(&graph_b, Config(&graph_b, f.model.get(), {1, 2, 3}),
                      {});
  const auto adopted = b.AdoptState(loaded.value());
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted.value().inference_calls, 0);
  EXPECT_EQ(b.engine().stats().model_invocations, 0);

  EXPECT_TRUE(b.witness() == a.witness());
  EXPECT_EQ(b.witness().ProtectedKeys(), a.witness().ProtectedKeys());
  EXPECT_EQ(b.unsecured(), a.unsecured());
  for (NodeId v : {1, 2, 3}) {
    EXPECT_EQ(b.RemainingBudget(v), a.RemainingBudget(v)) << "node " << v;
  }
  std::remove(path.c_str());
}

TEST(PortfolioIo, AdoptStateRejectsWrongModel) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1, 2}), {});
  m.Initialize();
  PortfolioState state = m.ExportState();
  state.model_fingerprint ^= 1;

  Graph graph2 = *f.graph;
  WitnessMaintainer fresh(&graph2, Config(&graph2, f.model.get(), {1, 2}),
                          {});
  const auto r = fresh.AdoptState(state);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("model fingerprint"),
            std::string::npos);
}

TEST(PortfolioIo, AdoptStateRejectsStateAheadOfGraph) {
  const auto& f = testing::TwoCommunityAppnp();
  const auto stream = SampleStream(*f.graph, 0.0, 29);

  Graph graph_a = *f.graph;
  WitnessMaintainer a(&graph_a, Config(&graph_a, f.model.get(), {1, 2}), {});
  a.Initialize();
  for (const UpdateBatch& b : stream) ASSERT_TRUE(a.Apply(b).ok());
  const PortfolioState state = a.ExportState();
  ASSERT_GT(state.mutation_version, f.graph->mutation_version());

  // Adopting into a graph that was NOT fast-forwarded: the state is ahead.
  Graph graph_b = *f.graph;
  WitnessMaintainer b(&graph_b, Config(&graph_b, f.model.get(), {1, 2}), {});
  const auto r = b.AdoptState(state);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("ahead"), std::string::npos);
}

TEST(PortfolioIo, AdoptStateRejectsWrongGraphAtSameVersion) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1, 2}), {});
  m.Initialize();
  PortfolioState state = m.ExportState();
  state.graph_fingerprint ^= 1;  // same version, different claimed content

  Graph graph2 = *f.graph;
  WitnessMaintainer fresh(&graph2, Config(&graph2, f.model.get(), {1, 2}),
                          {});
  const auto r = fresh.AdoptState(state);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("graph fingerprint"),
            std::string::npos);
}

TEST(PortfolioIo, AdoptStateRejectsNonTestNodeEntries) {
  const auto& f = testing::TwoCommunityAppnp();
  Graph graph = *f.graph;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1, 2}), {});
  m.Initialize();
  PortfolioState state = m.ExportState();
  state.unsecured.push_back(11);  // not a test node of this config

  Graph graph2 = *f.graph;
  WitnessMaintainer fresh(&graph2, Config(&graph2, f.model.get(), {1, 2}),
                          {});
  const auto r = fresh.AdoptState(state);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PortfolioIo, StaleStateDegradesToSoundRevalidation) {
  const auto& f = testing::TwoCommunityAppnp();
  const auto stream = SampleStream(*f.graph, 0.4, 31);
  const std::vector<NodeId> tests = {1, 2, 3};

  // Export a checkpoint EARLY (before any batch), then let the live graph
  // move on through the whole stream.
  Graph graph_a = *f.graph;
  WitnessMaintainer a(&graph_a, Config(&graph_a, f.model.get(), tests), {});
  a.Initialize();
  const PortfolioState stale = a.ExportState();
  for (const UpdateBatch& b : stream) ASSERT_TRUE(a.Apply(b).ok());

  // Adopt the stale checkpoint into the moved-on graph: never an error,
  // never a silent stale verdict — full revalidation instead.
  Graph graph_b = *f.graph;
  for (const UpdateBatch& b : stream) {
    ASSERT_TRUE(ApplyUpdateBatch(&graph_b, b).ok());
  }
  WitnessMaintainer b(&graph_b, Config(&graph_b, f.model.get(), tests), {});
  const auto r = b.AdoptState(stale);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Soundness: every covered node verifies on the CURRENT graph.
  const auto unsecured = b.unsecured();
  for (NodeId v : tests) {
    if (std::find(unsecured.begin(), unsecured.end(), v) != unsecured.end()) {
      continue;
    }
    WitnessConfig one = Config(&graph_b, f.model.get(), {v});
    EXPECT_TRUE(VerifyRcw(one, b.witness()).ok) << "node " << v;
  }
}

void CheckpointEquivalence(DisturbanceModel mode, double insert_frac,
                           uint64_t seed) {
  const auto& f = testing::TwoCommunityAppnp();
  const auto stream = SampleStream(*f.graph, insert_frac, seed);
  const std::vector<NodeId> tests = {1, 2, 3};

  // Oracle: uninterrupted maintenance, exporting at every batch boundary.
  Graph oracle_graph = *f.graph;
  WitnessConfig ocfg = Config(&oracle_graph, f.model.get(), tests);
  ocfg.disturbance = mode;
  WitnessMaintainer oracle(&oracle_graph, ocfg, {});
  oracle.Initialize();
  std::vector<PortfolioState> checkpoints = {oracle.ExportState()};
  for (const UpdateBatch& b : stream) {
    ASSERT_TRUE(oracle.Apply(b).ok());
    checkpoints.push_back(oracle.ExportState());
  }

  // Restore-and-continue from EVERY boundary: the final state must be
  // identical to the oracle's — verdicts, unsecured set, and the per-node
  // outstanding budgets all survive the round trip through disk.
  const std::string path = TempPath("equivalence.rwp");
  for (size_t j = 0; j < checkpoints.size(); ++j) {
    ASSERT_TRUE(SavePortfolio(checkpoints[j], path).ok());
    const auto loaded = LoadPortfolio(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    Graph graph = *f.graph;
    const auto consumed =
        FastForwardGraph(&graph, stream, loaded.value().mutation_version);
    ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();

    WitnessConfig cfg = Config(&graph, f.model.get(), tests);
    cfg.disturbance = mode;
    WitnessMaintainer m(&graph, cfg, {});
    const auto adopted = m.AdoptState(loaded.value());
    ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
    EXPECT_EQ(adopted.value().inference_calls, 0) << "boundary " << j;
    for (size_t b = consumed.value(); b < stream.size(); ++b) {
      ASSERT_TRUE(m.Apply(stream[b]).ok());
    }

    EXPECT_TRUE(m.witness() == oracle.witness()) << "boundary " << j;
    EXPECT_EQ(m.witness().ProtectedKeys(), oracle.witness().ProtectedKeys())
        << "boundary " << j;
    EXPECT_EQ(m.unsecured(), oracle.unsecured()) << "boundary " << j;
    for (NodeId v : tests) {
      EXPECT_EQ(m.RemainingBudget(v), oracle.RemainingBudget(v))
          << "boundary " << j << " node " << v;
    }
  }
  std::remove(path.c_str());
}

TEST(PortfolioIo, CheckpointEquivalenceRemovalOnly) {
  CheckpointEquivalence(DisturbanceModel::kRemovalOnly, 0.0, 37);
}

TEST(PortfolioIo, CheckpointEquivalenceFlipMode) {
  CheckpointEquivalence(DisturbanceModel::kFlip, 0.5, 43);
}

TEST(PortfolioIo, ApplyCheckpointsEveryNthBatch) {
  const auto& f = testing::TwoCommunityAppnp();
  const auto stream = SampleStream(*f.graph, 0.0, 47, /*batches=*/4);
  const std::string path = TempPath("auto_checkpoint.rwp");
  std::remove(path.c_str());

  Graph graph = *f.graph;
  MaintainOptions mopts;
  mopts.checkpoint_path = path;
  mopts.checkpoint_every_batches = 2;
  WitnessMaintainer m(&graph, Config(&graph, f.model.get(), {1, 2}), mopts);
  m.Initialize();

  ASSERT_TRUE(m.Apply(stream[0]).ok());
  EXPECT_FALSE(std::ifstream(path).good()) << "checkpointed too early";
  ASSERT_TRUE(m.Apply(stream[1]).ok());
  ASSERT_TRUE(std::ifstream(path).good()) << "no checkpoint after 2 batches";

  const auto loaded = LoadPortfolio(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().mutation_version, graph.mutation_version());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace robogexp
