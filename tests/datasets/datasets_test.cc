#include <gtest/gtest.h>

#include <set>

#include "src/datasets/disturbance.h"
#include "src/datasets/molecules.h"
#include "src/datasets/provenance.h"
#include "src/datasets/synthetic.h"
#include "src/graph/view.h"

namespace robogexp {
namespace {

TEST(BaHouse, MatchesPaperShape) {
  const Graph g = MakeBaHouse({});
  EXPECT_EQ(g.num_nodes(), 300);  // 210 base + 18 houses * 5
  EXPECT_EQ(g.num_classes(), 4);
  // Motif labels present.
  std::set<Label> seen(g.labels().begin(), g.labels().end());
  EXPECT_EQ(seen.size(), 4u);
  // Average degree near the paper's 5.
  EXPECT_NEAR(g.AverageDegree(), 5.0, 2.5);
}

TEST(BaHouse, HouseMotifsHaveHouseStructure) {
  BaHouseOptions opts;
  const Graph g = MakeBaHouse(opts);
  for (int h = 0; h < opts.num_houses; ++h) {
    const NodeId roof = opts.base_nodes + 5 * h;
    EXPECT_EQ(g.labels()[static_cast<size_t>(roof)], 1);
    EXPECT_TRUE(g.HasEdge(roof, roof + 1));
    EXPECT_TRUE(g.HasEdge(roof, roof + 2));
    EXPECT_TRUE(g.HasEdge(roof + 1, roof + 2));
    EXPECT_TRUE(g.HasEdge(roof + 3, roof + 4));
  }
}

TEST(Sbm, RespectsSizeClassAndDegreeTargets) {
  SbmOptions opts;
  opts.num_nodes = 500;
  opts.num_classes = 5;
  opts.avg_degree = 8.0;
  opts.feature_dim = 40;
  const Graph g = MakeSbmGraph(opts);
  EXPECT_EQ(g.num_nodes(), 500);
  EXPECT_EQ(g.num_classes(), 5);
  EXPECT_NEAR(g.AverageDegree(), 8.0, 1.0);
  EXPECT_EQ(g.num_features(), 40);
}

TEST(Sbm, HomophilyHolds) {
  SbmOptions opts;
  opts.num_nodes = 600;
  opts.num_classes = 4;
  opts.homophily = 0.85;
  opts.feature_dim = 32;
  const Graph g = MakeSbmGraph(opts);
  int64_t intra = 0;
  for (const Edge& e : g.Edges()) {
    if (g.labels()[static_cast<size_t>(e.u)] ==
        g.labels()[static_cast<size_t>(e.v)]) {
      ++intra;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(g.num_edges()),
            0.7);
}

TEST(Sbm, DeterministicForSeed) {
  SbmOptions opts;
  opts.num_nodes = 200;
  opts.num_classes = 3;
  opts.feature_dim = 24;
  const Graph a = MakeSbmGraph(opts);
  const Graph b = MakeSbmGraph(opts);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(DatasetWrappers, MatchTableTwoShapes) {
  const Graph citeseer = MakeCiteSeerSim(0.2);
  EXPECT_EQ(citeseer.num_classes(), 6);
  EXPECT_NEAR(citeseer.AverageDegree(), 5.5, 1.5);
  const Graph ppi = MakePpiSim(0.2);
  EXPECT_EQ(ppi.num_classes(), 12);
  const Graph reddit = MakeRedditSim(0.02);
  EXPECT_EQ(reddit.num_classes(), 41);
  EXPECT_GT(reddit.AverageDegree(), 20.0);
}

TEST(Molecules, ToxicophoresAreLabeledMutagenic) {
  const Graph g = MakeMutagenicityDataset({});
  EXPECT_EQ(g.num_classes(), 2);
  int mutagenic = 0;
  for (Label l : g.labels()) {
    if (l == kMutagenic) ++mutagenic;
  }
  EXPECT_GT(mutagenic, 0);
  EXPECT_LT(mutagenic, g.num_nodes());
}

TEST(Molecules, CaseStudyFamilyIsWellFormed) {
  const MoleculeFamily fam = MakeCaseStudyFamily();
  EXPECT_TRUE(fam.graph.ValidNode(fam.test_node));
  EXPECT_EQ(fam.graph.labels()[static_cast<size_t>(fam.test_node)], kMutagenic);
  EXPECT_TRUE(fam.graph.HasEdge(fam.e7.u, fam.e7.v));
  EXPECT_TRUE(fam.graph.HasEdge(fam.e8.u, fam.e8.v));
  EXPECT_EQ(fam.toxicophore.size(), 4u);
  EXPECT_EQ(fam.graph.NodeName(fam.test_node), "v3");
}

TEST(Provenance, AttackPathsReachBreach) {
  const ProvenanceGraph pg = MakeProvenanceGraph();
  EXPECT_EQ(pg.graph.labels()[static_cast<size_t>(pg.breach)], kVulnerable);
  EXPECT_TRUE(pg.graph.HasEdge(pg.cmd, pg.ssh_key));
  EXPECT_TRUE(pg.graph.HasEdge(pg.ssh_key, pg.breach));
  EXPECT_TRUE(pg.graph.HasEdge(pg.cmd, pg.sudoers));
  EXPECT_TRUE(pg.graph.HasEdge(pg.sudoers, pg.breach));
  EXPECT_EQ(pg.deceptive_edges.size(), 12u);
  EXPECT_EQ(pg.graph.NodeName(pg.breach), "breach.sh");
}

TEST(SampleDisturbance, RespectsBudgetsAndProtection) {
  const Graph g = MakeCiteSeerSim(0.1);
  Rng rng(3);
  std::unordered_set<uint64_t> protected_keys;
  const auto edges = g.Edges();
  for (size_t i = 0; i < 20 && i < edges.size(); ++i) {
    protected_keys.insert(edges[i].Key());
  }
  DisturbanceOptions opts;
  opts.k = 10;
  opts.local_budget = 2;
  const auto flips = SampleDisturbance(g, protected_keys, opts, &rng);
  EXPECT_LE(flips.size(), 10u);
  std::unordered_map<NodeId, int> load;
  for (const Edge& e : flips) {
    EXPECT_EQ(protected_keys.count(e.Key()), 0u);
    EXPECT_TRUE(g.HasEdge(e.u, e.v));  // removal-only by default
    EXPECT_LE(++load[e.u], 2);
    EXPECT_LE(++load[e.v], 2);
  }
}

TEST(SampleDisturbance, FocusRestrictsLocality) {
  const Graph g = MakeCiteSeerSim(0.1);
  Rng rng(5);
  DisturbanceOptions opts;
  opts.k = 6;
  opts.focus_nodes = {0};
  opts.hop_radius = 2;
  const auto flips = SampleDisturbance(g, {}, opts, &rng);
  const FullView full(&g);
  const auto ball = KHopBall(full, NodeId{0}, 2);
  const std::set<NodeId> in_ball(ball.begin(), ball.end());
  for (const Edge& e : flips) {
    EXPECT_TRUE(in_ball.count(e.u) > 0 && in_ball.count(e.v) > 0);
  }
}

TEST(ApplyDisturbance, FlipsExactlyTheListedPairs) {
  const Graph g = MakeCiteSeerSim(0.05);
  const auto edges = g.Edges();
  ASSERT_GE(edges.size(), 2u);
  const std::vector<Edge> flips{edges[0], Edge(0, g.num_nodes() - 1)};
  const Graph disturbed = ApplyDisturbance(g, flips);
  EXPECT_FALSE(disturbed.HasEdge(edges[0].u, edges[0].v));
  if (!g.HasEdge(0, g.num_nodes() - 1)) {
    EXPECT_TRUE(disturbed.HasEdge(0, g.num_nodes() - 1));
  }
  EXPECT_EQ(disturbed.num_nodes(), g.num_nodes());
  EXPECT_EQ(disturbed.num_classes(), g.num_classes());
}

}  // namespace
}  // namespace robogexp
